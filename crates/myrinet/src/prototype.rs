//! The measured implementation's forwarding logic (Section 8).
//!
//! What ran on the real testbed, reproduced faithfully — including its
//! *lack* of reliability machinery:
//!
//! * Hamiltonian circuit over all eight hosts, ascending IDs;
//! * worms stop at the node before their originator (no return-to-origin);
//! * store-and-forward at every adapter (LANai cannot cut through), with a
//!   fixed processing overhead before retransmission;
//! * a finite ~25 KB worm-buffer: a worm whose advertised size does not
//!   fit is **dropped silently** — no NACK, no retransmission, no
//!   backpressure into the network (Myrinet drops rather than stalls at
//!   the interface);
//! * saturating sources: the application "simply sent as many packets as
//!   possible" — modelled closed-loop, the next packet is ready one
//!   [`LanaiModel::pump_gap`] after the previous one finished transmitting
//!   (so a busy adapter naturally throttles its own host, exactly like a
//!   full injection queue would).

use crate::lanai::LanaiModel;
use std::collections::VecDeque;
use wormcast_sim::engine::HostId;
use wormcast_sim::protocol::{
    Admission, AdapterProtocol, AppMessage, Destination, ProtocolCtx, SendSpec,
};
use wormcast_sim::time::SimTime;
use wormcast_sim::worm::{MessageId, WormInstance, WormKind};

const PUMP_TIMER: u64 = 1;
const FWD_TIMER: u64 = 2;
const DMA_TIMER: u64 = 3;

/// A job on the host's single DMA/driver path (SBus): either delivering a
/// received worm up to the host, or preparing the next pump packet. Jobs
/// are served strictly in order — this shared bus is why, on the real
/// testbed, hosts that both originate and forward could not keep up
/// (Figures 12–13).
#[derive(Debug)]
enum DmaJob {
    Deliver {
        msg: MessageId,
        cost: SimTime,
    },
    PumpReady {
        cost: SimTime,
    },
}

impl DmaJob {
    fn cost(&self) -> SimTime {
        match self {
            DmaJob::Deliver { cost, .. } | DmaJob::PumpReady { cost } => *cost,
        }
    }
}

/// Per-host prototype protocol instance.
pub struct PrototypeProtocol {
    host: HostId,
    lanai: LanaiModel,
    /// All hosts in ascending order (the measured multicast group was all
    /// eight hosts).
    circuit: Vec<HostId>,
    packet_size: u32,
    is_sender: bool,
    /// Stop originating new packets at this time (lets the run drain).
    pump_until: SimTime,
    next_synth_msg: u64,
    /// Worm-buffer bytes currently reserved.
    rx_used: u32,
    /// Worms waiting out the LANai forwarding overhead.
    fwd_queue: VecDeque<SendSpec>,
    /// The host's single DMA path (serialized).
    dma_queue: VecDeque<DmaJob>,
    dma_busy: bool,
    /// Buffer reservations: message -> (outstanding refs, bytes). A
    /// forwarded worm's buffer is freed only after BOTH its retransmission
    /// and its host delivery have completed.
    held: std::collections::HashMap<MessageId, (u8, u32)>,
    pub packets_originated: u64,
}

impl PrototypeProtocol {
    pub fn new(
        host: HostId,
        lanai: LanaiModel,
        circuit: Vec<HostId>,
        packet_size: u32,
        is_sender: bool,
        pump_until: SimTime,
    ) -> Self {
        debug_assert!(circuit.windows(2).all(|w| w[0] < w[1]), "ascending IDs");
        PrototypeProtocol {
            host,
            lanai,
            circuit,
            packet_size,
            is_sender,
            pump_until,
            next_synth_msg: 0,
            rx_used: 0,
            fwd_queue: VecDeque::new(),
            dma_queue: VecDeque::new(),
            dma_busy: false,
            held: std::collections::HashMap::new(),
            packets_originated: 0,
        }
    }

    /// Enqueue a job on the host's single CPU/bus path, starting it if the
    /// path is idle. Strictly FIFO: send preparation and receive delivery
    /// contend for the same 70 MHz host — which is why a host that both
    /// originates and forwards falls behind (Figures 12–13).
    fn push_dma(&mut self, ctx: &mut ProtocolCtx, job: DmaJob) {
        if self.dma_busy {
            self.dma_queue.push_back(job);
        } else {
            self.dma_busy = true;
            ctx.set_timer(job.cost(), DMA_TIMER);
            self.dma_queue.push_back(job);
        }
    }

    /// Drop one reference on a held buffer; free it when both the
    /// retransmission and the host delivery are done.
    fn unref(&mut self, msg: MessageId) {
        if let Some((refs, bytes)) = self.held.get_mut(&msg) {
            *refs -= 1;
            if *refs == 0 {
                let bytes = *bytes;
                self.held.remove(&msg);
                self.rx_used = self.rx_used.saturating_sub(bytes);
            }
        }
    }

    fn successor(&self) -> HostId {
        let ix = self
            .circuit
            .iter()
            .position(|&h| h == self.host)
            .expect("host is on the circuit");
        self.circuit[(ix + 1) % self.circuit.len()]
    }

    /// Synthetic message identity for pump packets (the saturating source
    /// is not the simulator's traffic system, so it mints its own ids,
    /// disjoint per host).
    fn synth_msg(&mut self) -> MessageId {
        let id = ((self.host.0 as u64 + 1) << 44) | self.next_synth_msg;
        self.next_synth_msg += 1;
        MessageId(id)
    }

    fn originate(&mut self, ctx: &mut ProtocolCtx) {
        let msg = self.synth_msg();
        let spec = SendSpec {
            dest: self.successor(),
            kind: WormKind::Multicast { group: 0 },
            msg,
            origin: self.host,
            created: ctx.now,
            seq: 0,
            hops_left: (self.circuit.len() - 1) as u16,
            buffer_class: 1,
            payload_len: self.packet_size,
            advertised_size: self.packet_size,
            priority: false,
            follow: None,
            frag_index: 0,
            frag_last: true,
            stage: 0,
            route_override: None,
            sinks: 1,
        };
        self.packets_originated += 1;
        ctx.send(spec);
    }
}

impl AdapterProtocol for PrototypeProtocol {
    fn on_generate(&mut self, ctx: &mut ProtocolCtx, _msg: AppMessage) {
        // The one-shot source only kicks the pump off.
        if self.is_sender && ctx.now < self.pump_until {
            self.originate(ctx);
        }
    }

    fn on_header(&mut self, _ctx: &mut ProtocolCtx, worm: &WormInstance) -> Admission {
        match worm.meta.kind {
            WormKind::Multicast { .. } => {
                let need = worm.meta.advertised_size;
                // The ~25 KB SRAM also stages this host's own outgoing
                // packet, so a sending host has less of it for worms in
                // transit — the bigger the packets, the fewer transit
                // slots remain (a large part of Figure 13's size slope).
                let staging = if self.is_sender { self.packet_size } else { 0 };
                let cap = self.lanai.rx_buffer_bytes.saturating_sub(staging);
                if self.rx_used + need <= cap {
                    self.rx_used += need;
                    Admission::Accept
                } else {
                    // The measured system's only overload response: drop.
                    Admission::Refuse
                }
            }
            _ => Admission::Accept,
        }
    }

    fn on_worm_received(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        debug_assert!(matches!(worm.meta.kind, WormKind::Multicast { .. }));
        let bytes = worm.meta.advertised_size;
        let forwarding = worm.meta.hops_left > 1;
        // The buffer is held by the pending host delivery and, when
        // forwarding, by the pending retransmission too.
        self.held
            .insert(worm.meta.msg, (1 + u8::from(forwarding), bytes));
        // The worm reaches the application only after the shared host bus
        // carries it up; this is where "received data rate at each host" is
        // measured.
        self.push_dma(ctx, DmaJob::Deliver {
            msg: worm.meta.msg,
            cost: self.lanai.delivery_cost(bytes),
        });
        if forwarding {
            let mut spec = SendSpec::forward(worm, self.successor());
            spec.hops_left = worm.meta.hops_left - 1;
            self.fwd_queue.push_back(spec);
            ctx.set_timer(self.lanai.forward_overhead, FWD_TIMER);
        }
    }

    fn on_tx_complete(&mut self, ctx: &mut ProtocolCtx, worm: &WormInstance) {
        if worm.meta.origin == self.host {
            // Our own packet left the wire: preparing and staging the next
            // one is a job on the shared host CPU/bus path.
            if self.is_sender && ctx.now < self.pump_until {
                let cost = self.lanai.pump_gap(self.packet_size);
                self.push_dma(ctx, DmaJob::PumpReady { cost });
            }
        } else {
            // A forwarded copy left the wire.
            self.unref(worm.meta.msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtocolCtx, token: u64) {
        match token {
            PUMP_TIMER => {
                if self.is_sender && ctx.now < self.pump_until {
                    self.originate(ctx);
                }
            }
            FWD_TIMER => {
                if let Some(spec) = self.fwd_queue.pop_front() {
                    ctx.send(spec);
                }
            }
            DMA_TIMER => {
                let job = self.dma_queue.pop_front().expect("dma timer with job");
                match job {
                    DmaJob::Deliver { msg, .. } => {
                        ctx.deliver_local(msg);
                        self.unref(msg);
                    }
                    DmaJob::PumpReady { .. } => {
                        if self.is_sender && ctx.now < self.pump_until {
                            self.originate(ctx);
                        }
                    }
                }
                match self.dma_queue.front() {
                    Some(next) => ctx.set_timer(next.cost(), DMA_TIMER),
                    None => self.dma_busy = false,
                }
            }
            other => unreachable!("unknown prototype timer token {other}"),
        }
    }
}

/// Kick message for the one-shot source that starts a sender's pump.
pub fn pump_kick() -> wormcast_sim::protocol::SourceMessage {
    wormcast_sim::protocol::SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wormcast_sim::protocol::Command;
    use wormcast_sim::worm::{WormId, WormMeta};

    fn proto(host: u32, sender: bool) -> PrototypeProtocol {
        PrototypeProtocol::new(
            HostId(host),
            LanaiModel::default(),
            (0..8).map(HostId).collect(),
            4096,
            sender,
            1_000_000,
        )
    }

    fn run_cb<F: FnOnce(&mut PrototypeProtocol, &mut ProtocolCtx)>(
        p: &mut PrototypeProtocol,
        now: SimTime,
        f: F,
    ) -> Vec<Command> {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut cmds = Vec::new();
        let mut ctx = ProtocolCtx::new(now, p.host, 0, &mut rng, &mut cmds);
        f(p, &mut ctx);
        cmds
    }

    fn worm(host_pos: u32, hops: u16, size: u32) -> WormInstance {
        WormInstance {
            id: WormId(1),
            sinks: 1,
            meta: WormMeta {
                kind: WormKind::Multicast { group: 0 },
                msg: MessageId(9),
                injector: HostId(host_pos),
                origin: HostId(0),
                dest: HostId(host_pos + 1),
                seq: 0,
                hops_left: hops,
                buffer_class: 1,
                frag_index: 0,
                frag_last: true,
                advertised_size: size,
                stage: 0,
            },
            route: vec![],
            route_len: 0,
            header_len: 8,
            payload_len: size,
            created: 0,
            injected: 0,
        }
    }

    #[test]
    fn pump_starts_on_kick_and_reschedules_on_tx_complete() {
        let mut p = proto(0, true);
        let kick = AppMessage {
            msg: MessageId(0),
            origin: HostId(0),
            dest: Destination::Multicast(0),
            payload_len: 0,
            created: 0,
        };
        let cmds = run_cb(&mut p, 0, |p, ctx| p.on_generate(ctx, kick));
        assert_eq!(cmds.len(), 1);
        match &cmds[0] {
            Command::Send(s) => {
                assert_eq!(s.dest, HostId(1));
                assert_eq!(s.hops_left, 7);
                assert_eq!(s.payload_len, 4096);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.packets_originated, 1);
        // Own packet finished: the next pump cycle queues on the host bus.
        let mut own = worm(0, 7, 4096);
        own.meta.origin = HostId(0);
        let cmds = run_cb(&mut p, 5000, |p, ctx| p.on_tx_complete(ctx, &own));
        assert!(matches!(cmds[..], [Command::SetTimer { token: DMA_TIMER, .. }]));
        // The bus transfer completes: the next packet goes out.
        let cmds = run_cb(&mut p, 30_000, |p, ctx| p.on_timer(ctx, DMA_TIMER));
        assert!(
            cmds.iter().any(|c| matches!(c, Command::Send(_))),
            "pump continues after DMA: {cmds:?}"
        );
        assert_eq!(p.packets_originated, 2);
    }

    #[test]
    fn non_sender_never_originates() {
        let mut p = proto(3, false);
        let kick = AppMessage {
            msg: MessageId(0),
            origin: HostId(3),
            dest: Destination::Multicast(0),
            payload_len: 0,
            created: 0,
        };
        let cmds = run_cb(&mut p, 0, |p, ctx| p.on_generate(ctx, kick));
        assert!(cmds.is_empty());
    }

    #[test]
    fn buffer_overflow_drops_silently() {
        let mut p = proto(2, false);
        // 25 KB budget: six 4 KB worms fit, the seventh does not.
        for i in 0..6 {
            let adm = run_cb(&mut p, i, |p, ctx| {
                assert_eq!(p.on_header(ctx, &worm(1, 6, 4096)), Admission::Accept);
            });
            assert!(adm.is_empty(), "no control traffic");
        }
        run_cb(&mut p, 10, |p, ctx| {
            assert_eq!(p.on_header(ctx, &worm(1, 6, 4096)), Admission::Refuse);
        });
        assert_eq!(p.rx_used, 6 * 4096);
    }

    #[test]
    fn forward_waits_lanai_overhead_and_buffer_needs_both_releases() {
        let mut p = proto(2, false);
        let w = worm(1, 6, 4096);
        run_cb(&mut p, 0, |p, ctx| {
            assert_eq!(p.on_header(ctx, &w), Admission::Accept);
        });
        let cmds = run_cb(&mut p, 100, |p, ctx| p.on_worm_received(ctx, &w));
        // A host-delivery DMA job and the LANai forwarding timer start; the
        // application-visible delivery has NOT happened yet.
        assert!(
            !cmds.iter().any(|c| matches!(c, Command::DeliverLocal { .. })),
            "delivery must wait for the host DMA: {cmds:?}"
        );
        assert!(cmds
            .iter()
            .any(|c| matches!(c, Command::SetTimer { token: FWD_TIMER, .. })));
        assert!(cmds
            .iter()
            .any(|c| matches!(c, Command::SetTimer { token: DMA_TIMER, .. })));
        // LANai overhead elapses: the copy goes out.
        let cmds = run_cb(&mut p, 1700, |p, ctx| p.on_timer(ctx, FWD_TIMER));
        match &cmds[0] {
            Command::Send(s) => {
                assert_eq!(s.dest, HostId(3));
                assert_eq!(s.hops_left, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Host DMA completes: delivered to the app, but the buffer is still
        // held by the pending retransmission.
        let cmds = run_cb(&mut p, 16500, |p, ctx| p.on_timer(ctx, DMA_TIMER));
        assert!(matches!(cmds[0], Command::DeliverLocal { .. }));
        assert_eq!(p.rx_used, 4096);
        // The copy's tail leaves the wire: now the buffer is free.
        let mut fwd = worm(2, 5, 4096);
        fwd.meta.origin = HostId(0); // not ours
        run_cb(&mut p, 22000, |p, ctx| p.on_tx_complete(ctx, &fwd));
        assert_eq!(p.rx_used, 0);
    }

    #[test]
    fn final_hop_releases_after_host_dma() {
        let mut p = proto(7, false);
        let w = worm(6, 1, 2048);
        run_cb(&mut p, 0, |p, ctx| {
            assert_eq!(p.on_header(ctx, &w), Admission::Accept);
        });
        let cmds = run_cb(&mut p, 100, |p, ctx| p.on_worm_received(ctx, &w));
        assert!(cmds
            .iter()
            .any(|c| matches!(c, Command::SetTimer { token: DMA_TIMER, .. })));
        assert_eq!(p.rx_used, 2048, "held until the host takes it");
        let cmds = run_cb(&mut p, 8300, |p, ctx| p.on_timer(ctx, DMA_TIMER));
        assert!(matches!(cmds[0], Command::DeliverLocal { .. }));
        assert_eq!(p.rx_used, 0);
    }

    #[test]
    fn dma_serializes_jobs_fifo() {
        let mut p = proto(7, false);
        let w1 = worm(6, 1, 2048);
        let mut w2 = worm(6, 1, 2048);
        w2.meta.msg = MessageId(10);
        run_cb(&mut p, 0, |p, ctx| {
            assert_eq!(p.on_header(ctx, &w1), Admission::Accept);
        });
        let c1 = run_cb(&mut p, 10, |p, ctx| p.on_worm_received(ctx, &w1));
        assert_eq!(
            c1.iter()
                .filter(|c| matches!(c, Command::SetTimer { token: DMA_TIMER, .. }))
                .count(),
            1
        );
        run_cb(&mut p, 20, |p, ctx| {
            assert_eq!(p.on_header(ctx, &w2), Admission::Accept);
        });
        let c2 = run_cb(&mut p, 30, |p, ctx| p.on_worm_received(ctx, &w2));
        assert!(
            !c2.iter()
                .any(|c| matches!(c, Command::SetTimer { token: DMA_TIMER, .. })),
            "second job queues behind the busy DMA: {c2:?}"
        );
        // First completion delivers w1 and starts w2's transfer.
        let c3 = run_cb(&mut p, 8300, |p, ctx| p.on_timer(ctx, DMA_TIMER));
        assert!(matches!(c3[0], Command::DeliverLocal { msg: MessageId(9) }));
        assert!(matches!(c3[1], Command::SetTimer { token: DMA_TIMER, .. }));
        let c4 = run_cb(&mut p, 16500, |p, ctx| p.on_timer(ctx, DMA_TIMER));
        assert!(matches!(c4[0], Command::DeliverLocal { msg: MessageId(10) }));
        assert_eq!(p.rx_used, 0);
    }
}
