//! # wormcast-myrinet — the Section 8 prototype testbed, as a model
//!
//! The paper's measurements (Figures 12 and 13) come from a real
//! installation: four Myrinet switches, eight SPARCstation-5 hosts with
//! LANai interface cards, and a Hamiltonian-circuit multicast implemented
//! in the LANai control program — store-and-forward at every hop (the
//! LANai cannot cut through), **no backpressure from the adapter into the
//! network**, and *no deadlock-prevention/reliability machinery*: a worm
//! arriving at a full input buffer is simply dropped. That last property is
//! the point of Figure 13 — the measured loss is the paper's argument that
//! a deadlock-safe buffer scheme is needed for high utilization.
//!
//! We cannot run the hardware, so this crate models it on top of the
//! byte-level simulator (see DESIGN.md, substitutions):
//!
//! * [`lanai`] — the adapter/host timing model: per-packet host send
//!   overhead, host-bus DMA bandwidth (the SBus, not the 640 Mb/s link, is
//!   the sender bottleneck), LANai forwarding overhead, and the ~25 KB
//!   worm-buffer budget;
//! * [`prototype`] — the Hamiltonian forwarding logic as implemented in
//!   the measured system (finite buffers, drop on overflow, greedy
//!   saturating sources);
//! * [`experiment`] — the two measurements: single-sender and
//!   all-send/receive throughput vs packet size (Figure 12), and per-host
//!   reception loss (Figure 13).

pub mod experiment;
pub mod lanai;
pub mod prototype;

pub use experiment::{run_prototype, PrototypeConfig, PrototypeResult};
pub use lanai::LanaiModel;
