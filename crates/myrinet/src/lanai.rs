//! Timing model of the prototype's host + adapter send/forward paths.
//!
//! All times are in byte-times of the 640 Mb/s link (1 byte-time = 12.5 ns).
//!
//! Calibration targets (from the paper's Figure 12): a single sender
//! reaches roughly 40–50 Mb/s at 1 KB packets and ~120 Mb/s at 8 KB. That
//! shape — linear-ish rise flattening towards a bandwidth asymptote — is
//! produced by a fixed per-packet cost plus a per-byte cost several times
//! the link's, which matches the hardware: the SPARCstation-5's SBus DMA
//! moves data at roughly 15–20 MB/s while the link moves 80 MB/s, and the
//! application/driver path costs on the order of 100 µs per packet.

use serde::{Deserialize, Serialize};
use wormcast_sim::time::SimTime;

/// Adapter and host timing/capacity parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LanaiModel {
    /// Fixed host-side cost per originated packet (system-call-free
    /// application-space interface, but still driver queue manipulation and
    /// LANai doorbells), in byte-times.
    pub send_overhead: SimTime,
    /// Host→adapter DMA cost per payload byte, in byte-times per byte.
    /// 3.0 ≈ a 27 MB/s SBus burst against the 80 MB/s link.
    pub dma_byte_times_per_byte: f64,
    /// Adapter→host delivery cost per payload byte (DMA plus the driver's
    /// copy/checksum on the 70 MHz host), in byte-times per byte. Shares
    /// the single host bus with the transmit path.
    pub rx_dma_byte_times_per_byte: f64,
    /// Fixed host-side cost per received packet (interrupt, driver entry,
    /// descriptor handling), in byte-times. On the 70 MHz SPARCstation 5
    /// this dominates small-packet reception.
    pub rx_overhead: SimTime,
    /// LANai processing between fully receiving a worm and starting its
    /// retransmission (store-and-forward; the LANai cannot cut through).
    pub forward_overhead: SimTime,
    /// Worm-buffer budget in the adapter SRAM ("about 25 Kbytes").
    pub rx_buffer_bytes: u32,
}

impl Default for LanaiModel {
    fn default() -> Self {
        LanaiModel {
            send_overhead: 10_000,            // 125 µs
            dma_byte_times_per_byte: 3.0,     // ~27 MB/s host bus
            rx_dma_byte_times_per_byte: 3.5,  // ~23 MB/s delivery path
            rx_overhead: 10_000,              // 125 µs per received packet
            forward_overhead: 1_600,          // 20 µs of LANai work
            rx_buffer_bytes: 25 * 1024,
        }
    }
}

impl LanaiModel {
    /// Time from one originated packet's transmit completion to the next
    /// packet being ready to transmit (the saturating-source period minus
    /// the wire time).
    pub fn pump_gap(&self, payload: u32) -> SimTime {
        self.send_overhead + (payload as f64 * self.dma_byte_times_per_byte) as SimTime
    }

    /// Closed-form single-sender goodput prediction in Mb/s (wire time +
    /// pump gap per packet), for calibration tests.
    pub fn predicted_single_sender_mbps(&self, payload: u32) -> f64 {
        let per_packet = payload as f64 + self.pump_gap(payload) as f64;
        (payload as f64 / per_packet) * 640.0
    }

    /// Delivery (adapter→host) cost for one worm, in byte-times: fixed
    /// per-packet host work plus the bus transfer.
    pub fn delivery_cost(&self, payload: u32) -> SimTime {
        self.rx_overhead + (payload as f64 * self.rx_dma_byte_times_per_byte) as SimTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_shape_matches_figure12() {
        let m = LanaiModel::default();
        let at_1k = m.predicted_single_sender_mbps(1024);
        let at_4k = m.predicted_single_sender_mbps(4096);
        let at_8k = m.predicted_single_sender_mbps(8192);
        assert!(at_1k < at_4k && at_4k < at_8k, "monotone rise");
        // Paper ballpark: tens of Mb/s at 1 KB, low hundreds at 8 KB.
        assert!((20.0..=80.0).contains(&at_1k), "1KB: {at_1k}");
        assert!((80.0..=180.0).contains(&at_8k), "8KB: {at_8k}");
    }

    #[test]
    fn pump_gap_grows_with_size() {
        let m = LanaiModel::default();
        assert!(m.pump_gap(8192) > m.pump_gap(1024));
        assert_eq!(m.pump_gap(0), m.send_overhead);
    }
}
