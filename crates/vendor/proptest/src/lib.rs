//! Offline stand-in for `proptest`.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal property-testing harness under the `proptest` name. It keeps the
//! parts this repo actually uses — the `proptest!` macro, range / tuple /
//! collection strategies, `any`, `prop_assert*`, `prop_assume!`, and
//! `ProptestConfig::with_cases` — and drops the rest (shrinking, persisted
//! failure seeds, fork mode).
//!
//! Inputs are generated from a SplitMix64 stream seeded by the case index,
//! so every run of a test binary replays the exact same cases. A failing
//! case panics with its index; rerunning reproduces it deterministically.

pub mod test_runner {
    /// Run-count configuration, mirroring the upstream field of the same
    /// name. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass: a real failure, or a `prop_assume!`
    /// rejection (the harness skips rejected cases silently).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Reject(reason.into())
        }

        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-case random stream (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Each case of each run gets the same stream, keyed by its index.
        pub fn for_case(case: u32) -> Self {
            let mut rng = TestRng {
                state: (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D1CE_4E5D,
            };
            // Discard a few outputs so nearby seeds decorrelate.
            for _ in 0..4 {
                rng.next_u64();
            }
            rng
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`. `n` must be nonzero.
        pub fn below(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            if n == 1 {
                return 0;
            }
            // Widening-multiply mapping of a 128-bit draw; the bias over a
            // u128 range is negligible for test-input generation.
            let x = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            // (x * n) >> 128, via the high halves.
            let (xh, xl) = (x >> 64, x & u64::MAX as u128);
            let (nh, nl) = (n >> 64, n & u64::MAX as u128);
            let ll = xl * nl;
            let lh = xl * nh;
            let hl = xh * nl;
            let hh = xh * nh;
            let mid = (ll >> 64) + (lh & u64::MAX as u128) + (hl & u64::MAX as u128);
            hh + (lh >> 64) + (hl >> 64) + (mid >> 64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Anything that can generate one value of its output type from the
    /// case's random stream. Upstream strategies also know how to shrink;
    /// this stand-in does not.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let width = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )+};
    }

    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // 53 uniform bits scaled into the interval.
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies!(
        (0 A),
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    );

    /// `any::<T>()` — the canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// `Vec` of `len ∈ size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` whose size lands in `size` when the element domain is
    /// large enough; insertion attempts are capped so a small domain
    /// cannot hang the generator.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 + 16 * target {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            if out.is_empty() && self.size.start > 0 {
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::any;

/// Define deterministic property tests. Supports the upstream surface this
/// repo uses: an optional `#![proptest_config(..)]` header and `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result = (move || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(e) if e.is_reject() => {}
                    ::std::result::Result::Err(e) => {
                        panic!("proptest case {} failed: {}", __case, e);
                    }
                }
            }
        }
    )*};
}

/// `assert!` that reports through `TestCaseError` so helpers returning
/// `TestCaseResult` can use `?`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
}

/// Skip the current case when a generated input misses a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(7);
        for _ in 0..1000 {
            let x = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (1u16..).generate(&mut rng);
            assert!(y >= 1);
            let z = (5i32..=9).generate(&mut rng);
            assert!((5..=9).contains(&z));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::for_case(3);
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..4, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let s = crate::collection::btree_set(0u32..64, 1..12).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 12);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = {
            let mut rng = TestRng::for_case(11);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_case(11);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            n in 1usize..10,
            flag in any::<bool>(),
            items in crate::collection::vec((0u8..4, any::<bool>()), 1..8),
        ) {
            prop_assert!(n >= 1, "range lower bound");
            prop_assume!(flag || !flag);
            prop_assert_eq!(items.len(), items.len());
            for (v, _) in items {
                prop_assert!(v < 4);
            }
        }
    }
}
