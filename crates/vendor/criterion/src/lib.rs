//! Offline stand-in for `criterion`.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal benchmark harness under the `criterion` name. It keeps the API
//! surface this repo uses — `criterion_group!` / `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with `throughput` and
//! `sample_size`, and `Bencher::iter` — and reports mean wall-clock time
//! per iteration (plus derived throughput) on stdout. No statistics,
//! plots, or saved baselines.
//!
//! Under `cargo test` the harness binary is invoked with `--test`; each
//! benchmark then runs exactly once as a smoke test, like upstream.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Top-level harness handle, passed to each registered bench function.
pub struct Criterion {
    test_mode: bool,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Honor the flags cargo passes to bench binaries. Only `--test`
    /// changes behavior (run every benchmark once, unmeasured).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be nonzero");
        self.default_samples = n;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            samples: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_samples;
        run_benchmark(id, None, samples, self.test_mode, f);
        self
    }

    pub fn final_summary(&self) {}
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be nonzero");
        self.samples = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        run_benchmark(&full, self.throughput, samples, self.criterion.test_mode, f);
        self
    }

    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One unmeasured warmup pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(id: &str, throughput: Option<Throughput>, samples: usize, test_mode: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }
    // Calibrate: time one iteration, then size the measured batch so the
    // whole sample run stays in the low seconds.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(300);
    let iters_per_sample = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed / iters_per_sample as u32;
        best = best.min(mean);
        total += b.elapsed;
        total_iters += iters_per_sample;
    }
    let mean = Duration::from_nanos((total.as_nanos() / total_iters.max(1) as u128) as u64);
    let mut line = format!(
        "{id:<50} time: [{} mean, {} best of {samples}x{iters_per_sample}]",
        fmt_duration(mean),
        fmt_duration(best),
    );
    if let Some(t) = throughput {
        line.push_str(&format!("  thrpt: [{}]", fmt_throughput(t, mean)));
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_throughput(t: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    let (count, unit) = match t {
        Throughput::Elements(n) => (n, "elem/s"),
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (n, "B/s"),
    };
    let rate = count as f64 / secs;
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Bundle bench functions into a named group runner, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a bench binary from one or more group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 6); // warmup + 5 measured
        assert!(b.elapsed > Duration::ZERO || calls > 0);
    }

    #[test]
    fn formatting_is_sane() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
        let t = fmt_throughput(Throughput::Elements(1_000_000), Duration::from_millis(1));
        assert!(t.contains("Gelem/s"), "{t}");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            test_mode: true,
            default_samples: 2,
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64));
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(2) * 2));
    }
}
