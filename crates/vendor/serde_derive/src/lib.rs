//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! `syn`/`quote` are not available offline, so this macro walks the raw
//! `proc_macro::TokenTree` stream directly and emits generated impls by
//! formatting source text. Supported shapes (everything this workspace
//! derives): named-field structs, unit structs, tuple structs (newtype
//! serializes transparently, wider tuples as arrays), and externally-tagged
//! enums with unit / tuple / struct variants. The only honored container
//! attribute is `#[serde(rename_all = "kebab-case")]`; other `#[serde(...)]`
//! attributes are rejected loudly rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated impl parses")
}

// -- parsed model -----------------------------------------------------------

enum Body {
    Unit,
    /// Tuple struct / variant: just the arity.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    body: Body,
}

enum Kind {
    Struct(Body),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kebab: bool,
    kind: Kind,
}

// -- token walking ----------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut kebab = false;
    let mut i = 0;

    // Leading attributes (doc comments, #[serde(...)], other derives' helpers).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    kebab |= attr_is_kebab(&g.stream());
                    i += 2;
                } else {
                    panic!("malformed attribute");
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let is_enum = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => false,
        TokenTree::Ident(id) if id.to_string() == "enum" => true,
        other => panic!("expected struct or enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stand-in does not support generic types (on `{name}`)");
    }

    let kind = if is_enum {
        let body = match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("expected enum body, found {other}"),
        };
        Kind::Enum(parse_variants(body))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Body::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Body::Tuple(count_top_level(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Body::Unit),
            other => panic!("expected struct body, found {other:?}"),
        }
    };

    Item { name, kebab, kind }
}

/// True iff the attribute body is `serde(rename_all = "kebab-case")`;
/// panics on any *other* `serde(...)` attribute so unsupported serde
/// features fail the build instead of changing wire formats silently.
fn attr_is_kebab(body: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false, // some other attribute (doc, derive helper...)
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) => g.stream().to_string(),
        _ => panic!("bare #[serde] attribute is not supported"),
    };
    let flat: String = inner.chars().filter(|c| !c.is_whitespace()).collect();
    if flat == "rename_all=\"kebab-case\"" {
        true
    } else {
        panic!("unsupported serde attribute: #[serde({inner})]");
    }
}

/// Split a token list on top-level commas, treating `<...>` nesting as
/// opaque (groups are already single trees; only angle brackets need depth
/// tracking).
fn split_top_commas(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn count_top_level(body: TokenStream) -> usize {
    split_top_commas(body).len()
}

/// Strip leading attributes and a visibility modifier from a field/variant
/// token run.
fn strip_attrs_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    split_top_commas(body)
        .into_iter()
        .filter_map(|field| {
            let field = strip_attrs_vis(&field);
            match field.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                None => None, // trailing comma
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    split_top_commas(body)
        .into_iter()
        .filter_map(|var| {
            let var = strip_attrs_vis(&var);
            let name = match var.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                None => return None, // trailing comma
                other => panic!("expected variant name, found {other:?}"),
            };
            let body = match var.get(1) {
                None => Body::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_top_level(g.stream()))
                }
                other => panic!("unsupported variant shape after `{name}`: {other:?}"),
            };
            Some(Variant { name, body })
        })
        .collect()
}

// -- naming -----------------------------------------------------------------

/// serde's `kebab-case` rule: fields `a_b` → `a-b`, variants `AbCd` → `ab-cd`
/// (digits stay attached to the preceding word).
fn kebab_field(name: &str) -> String {
    name.replace('_', "-")
}

fn kebab_variant(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

impl Item {
    fn field_key(&self, field: &str) -> String {
        if self.kebab {
            kebab_field(field)
        } else {
            field.to_string()
        }
    }

    fn variant_key(&self, variant: &str) -> String {
        if self.kebab {
            kebab_variant(variant)
        } else {
            variant.to_string()
        }
    }
}

// -- code generation --------------------------------------------------------

fn named_to_object(item: &Item, fields: &[String], accessor: impl Fn(&str) -> String) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({:?}.to_string(), ::serde::Serialize::to_value(&{}))",
                item.field_key(f),
                accessor(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Body::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Body::Tuple(1)) => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Kind::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Body::Named(fields)) => {
            named_to_object(item, fields, |f| format!("self.{f}"))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let key = item.variant_key(&v.name);
                    let vn = &v.name;
                    match &v.body {
                        Body::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({key:?}.to_string()),"
                        ),
                        Body::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![({key:?}\
                             .to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Body::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({key:?}\
                                 .to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Body::Named(fields) => {
                            let obj = named_to_object(item, fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![\
                                 ({key:?}.to_string(), {obj})]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Body::Unit) => format!("let _ = v; Ok({name})"),
        Kind::Struct(Body::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::__private::tuple_items(v, {n})?;\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Struct(Body::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::__private::de_field(v, {:?})?",
                        item.field_key(f)
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.body, Body::Unit))
                .map(|v| {
                    format!(
                        "{:?} => return Ok({name}::{}),",
                        item.variant_key(&v.name),
                        v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let key = item.variant_key(&v.name);
                    let vn = &v.name;
                    match &v.body {
                        Body::Unit => format!("{key:?} => Ok({name}::{vn}),"),
                        Body::Tuple(1) => format!(
                            "{key:?} => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(payload)?)),"
                        ),
                        Body::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{key:?} => {{ let items = \
                                 ::serde::__private::tuple_items(payload, {n})?; \
                                 Ok({name}::{vn}({})) }},",
                                items.join(", ")
                            )
                        }
                        Body::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::__private::de_field(payload, {:?})?",
                                        item.field_key(f)
                                    )
                                })
                                .collect();
                            format!(
                                "{key:?} => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(s) = v {{\n\
                     match s.as_str() {{ {} _ => {{}} }}\n\
                     return Err(::serde::DeError(format!(\
                         \"unknown variant `{{s}}` for {name}\")));\n\
                 }}\n\
                 let (tag, payload) = ::serde::__private::enum_tag(v)?;\n\
                 match tag {{ {} other => Err(::serde::DeError(format!(\
                     \"unknown variant `{{other}}` for {name}\"))) }}",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
