//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal serialization framework under the `serde` name. Unlike the real
//! crate's zero-copy visitor architecture, this one round-trips through an
//! owned [`Value`] tree — entirely adequate for the workspace's use (JSON
//! config files and result dumps) and small enough to audit in one sitting.
//!
//! The `derive` feature forwards to a hand-rolled proc-macro that supports
//! the shapes this repo uses: named-field structs, newtype/tuple structs,
//! and externally-tagged enums with unit/tuple/struct variants, plus the
//! `#[serde(rename_all = "kebab-case")]` attribute.

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

mod value {
    /// An owned JSON-like document tree. Object fields keep insertion order
    /// so serialized output is stable across runs.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        U64(u64),
        I64(i64),
        F64(f64),
        Str(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Look up a field of an object by key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => {
                    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }
    }
}

/// Deserialization failure: a human-readable path/description.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// -- primitive impls --------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    Value::F64(x) if x >= 0.0 && x.fract() == 0.0 => x as u64,
                    ref other => return Err(DeError(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| DeError(format!(
                    "{raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )+};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| DeError(format!("{x} out of i64 range")))?,
                    Value::F64(x) if x.fract() == 0.0 => x as i64,
                    ref other => return Err(DeError(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| DeError(format!(
                    "{raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )+};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // JSON numbers in this stand-in are u64-wide; overflow falls back
        // to a decimal string, which `from_value` accepts symmetrically.
        match u64::try_from(*self) {
            Ok(x) => Value::U64(x),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::U64(x) => Ok(*x as u128),
            Value::I64(x) if *x >= 0 => Ok(*x as u128),
            Value::Str(s) => s
                .parse()
                .map_err(|_| DeError(format!("invalid u128 `{s}`"))),
            other => Err(DeError(format!("expected u128, got {other:?}"))),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(x) => Value::I64(x),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::I64(x) => Ok(*x as i128),
            Value::U64(x) => Ok(*x as i128),
            Value::Str(s) => s
                .parse()
                .map_err(|_| DeError(format!("invalid i128 `{s}`"))),
            other => Err(DeError(format!("expected i128, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            ref other => Err(DeError(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// Map keys must render to / parse from JSON object-key strings, matching
/// serde_json's behavior for integer- and string-keyed maps.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! map_key_int {
    ($($t:ty),+) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError(format!(
                    "invalid {} map key `{key}`", stringify!($t)
                )))
            }
        }
    )+};
}

map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, item)| Ok((K::from_key(k)?, V::from_value(item)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Ord + std::hash::Hash,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    fn to_value(&self) -> Value {
        // Sort keys so serialized output is stable across runs.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, item)| Ok((K::from_key(k)?, V::from_value(item)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($n),+].len();
                        if items.len() != expect {
                            return Err(DeError(format!(
                                "expected {expect}-tuple, got {} items", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError(format!("expected array, got {other:?}"))),
                }
            }
        }
    )+};
}

ser_de_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Support machinery used by the derive macro's generated code.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Fetch and deserialize a (possibly renamed) struct field. Missing
    /// fields fall back to deserializing from `Null`, which makes `Option`
    /// fields optional — mirroring serde's observable behavior for JSON.
    pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        match v.get(name) {
            Some(f) => T::from_value(f)
                .map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
            None => T::from_value(&Value::Null)
                .map_err(|_| DeError(format!("missing field `{name}`"))),
        }
    }

    /// The single `{ "Variant": payload }` pair of an externally-tagged enum.
    pub fn enum_tag(v: &Value) -> Result<(&str, &Value), DeError> {
        match v {
            Value::Object(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), &fields[0].1))
            }
            other => Err(DeError(format!(
                "expected single-key object for enum, got {other:?}"
            ))),
        }
    }

    pub fn tuple_items(v: &Value, n: usize) -> Result<&[Value], DeError> {
        match v {
            Value::Array(items) if items.len() == n => Ok(items),
            other => Err(DeError(format!(
                "expected {n}-element array, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()), Ok(None));
        let t = ("x".to_string(), 1.5f64);
        assert_eq!(<(String, f64)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn range_checks() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
