//! Offline stand-in for `serde_json` over the vendored serde [`Value`] tree.
//!
//! Implements exactly what the workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`], plus a spec-complete JSON text
//! parser (escapes, surrogate pairs, exponents) so hand-written config files
//! round-trip reliably.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Unified error for serialization (infallible here) and parsing.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON (two spaces, like upstream).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// -- printing ---------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest round-trip decimal and keeps a
                // ".0" on integral values, matching upstream output closely.
                out.push_str(&format!("{x:?}"));
            } else {
                // JSON has no Inf/NaN; upstream errors, we emit null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -- parsing ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                Error("invalid unicode escape".into())
                            })?);
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error(format!("invalid \\u{hex}")))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "42", "-7", "3.5", "\"hi\""] {
            let v = parse_value(text).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn nested_structure() {
        let v = parse_value(r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        match v.get("a") {
            Some(Value::Array(items)) => {
                assert_eq!(items[0], Value::U64(1));
                assert_eq!(items[1], Value::F64(2.5));
                assert_eq!(items[2].get("b"), Some(&Value::Str("x\ny".into())));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn pretty_printing_indents() {
        let v = parse_value(r#"{"a":[1],"b":{}}"#).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""A😀""#).unwrap();
        assert_eq!(v, Value::Str("A😀".into()));
    }

    #[test]
    fn big_u64_precision_survives() {
        let n = u64::MAX - 3;
        let v = parse_value(&n.to_string()).unwrap();
        assert_eq!(v, Value::U64(n));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
    }
}
