//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: `SmallRng` (xoshiro256++,
//! SplitMix64-seeded, like `rand` 0.8 on 64-bit targets), `SeedableRng`,
//! `Rng::{gen, gen_bool, gen_range}`, and `seq::SliceRandom::shuffle`.
//! Algorithms follow the upstream implementations (PCG32 seed filling,
//! Lemire widening-multiply range sampling, 53-bit float conversion) so
//! swapping the real crate back in changes nothing structurally; only the
//! literal byte streams would have to be re-validated.

/// Core random source: 32/64-bit output plus byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A seedable random source.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Derive a full seed from a `u64` via the PCG32 stream used by
    /// `rand_core` 0.6, so seeds stay well mixed even when close together.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let out = xorshifted.rotate_right(rot).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&out[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Marker for types the `Standard` distribution can produce.
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as u8) & 1 == 1
    }
}
impl StandardSample for f64 {
    /// 53 random bits into `[0, 1)`, as in upstream `Standard`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                sample_below(rng, (self.end - self.start) as $wide)
                    .map(|v| self.start + v as $t)
                    .unwrap_or_else(|| unreachable!("nonzero span"))
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as $wide;
                match span.checked_add(1) {
                    Some(n) => lo + sample_below(rng, n).expect("nonzero span") as $t,
                    // Full-width range: every value is fair.
                    None => <$t>::sample_standard(rng),
                }
            }
        }
    )+};
}

impl_int_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64);

macro_rules! impl_signed_range {
    ($($t:ty as $u:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(sample_below(rng, span).expect("nonzero") as $t)
            }
        }
    )+};
}

impl_signed_range!(i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, n)` by Lemire's widening-multiply method with
/// rejection (the upstream `sample_single` algorithm). `None` iff `n == 0`.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> Option<u64> {
    if n == 0 {
        return None;
    }
    let zone = (n << n.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (n as u128);
        let lo = m as u64;
        if lo <= zone {
            return Some((m >> 64) as u64);
        }
    }
}

/// The user-facing sampling API (upstream `rand::Rng` subset).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw: true with probability `p` (upstream integer method).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind `rand` 0.8's 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.step() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let n = chunk.len();
                chunk.copy_from_slice(&self.step().to_le_bytes()[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remap it.
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 0xB7E151628AED2A6A, 0x1];
            }
            SmallRng { s }
        }

        /// SplitMix64 expansion, as `rand_xoshiro` recommends for xoshiro
        /// family generators.
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            let mut rng = SmallRng { s };
            if rng.s == [0; 4] {
                rng.s[3] = 1;
            }
            rng
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (upstream `rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle, identical traversal order to upstream.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u64..=3);
            assert!(w <= 3);
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes_and_mean() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        use super::seq::SliceRandom;
        let mut r = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }
}
