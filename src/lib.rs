//! # wormcast
//!
//! A facade crate re-exporting the whole `wormcast` workspace: a
//! production-quality Rust reproduction of
//!
//! > Gerla, Palnati, Walton. *Multicasting Protocols for High-Speed,
//! > Wormhole-Routing Local Area Networks.* ACM SIGCOMM 1996.
//!
//! The workspace implements, from scratch:
//!
//! * a byte-level, deterministic discrete-event simulator of a
//!   Myrinet-class wormhole LAN ([`sim`]);
//! * the paper's topologies (8×8 torus, 24-node bidirectional shufflenet)
//!   and deadlock-free up/down routing ([`topo`]);
//! * the paper's contribution — deadlock-free, reliable, network-level
//!   multicast protocols: Hamiltonian-circuit and rooted-tree host-adapter
//!   multicast with two-buffer-class deadlock avoidance and implicit
//!   (ACK/NACK) buffer reservation, plus switch-level multicast with the
//!   Figure 2 tree route encoding ([`core`]);
//! * workload generation and statistics ([`traffic`], [`stats`]);
//! * a calibrated model of the paper's 8-host / 4-switch Myrinet prototype
//!   for the Section 8 measurements ([`myrinet`]).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results of every figure.

pub use wormcast_core as core;
pub use wormcast_myrinet as myrinet;
pub use wormcast_sim as sim;
pub use wormcast_stats as stats;
pub use wormcast_topo as topo;
pub use wormcast_traffic as traffic;

/// One-stop imports for driving a simulation — the simulator's own
/// prelude plus the cross-crate pieces a whole experiment needs
/// ([`topo::ShardPlan`] for the parallel engine, [`topo::TopoBuilder`]
/// for fabrics).
///
/// A complete builder-based simulation compiles from this prelude alone:
///
/// ```
/// use wormcast::prelude::*;
///
/// // Two switches joined by a two-lane trunk, one host on each.
/// let spec = FabricSpec {
///     switch_ports: vec![2, 2],
///     hosts: vec![
///         HostAttach { switch: 0, port: 1 },
///         HostAttach { switch: 1, port: 1 },
///     ],
///     links: vec![LinkSpec {
///         a: (0, PortId(0)),
///         b: (1, PortId(0)),
///         delay: 2,
///         lanes: 0, // defer to NetworkConfig::lanes
///     }],
///     host_link_delay: 1,
/// };
/// let cfg = NetworkConfig::builder()
///     .seed(7)
///     .mode(SimMode::SpanBatched)
///     .lanes(2)
///     .arbiter(LaneArbiterKind::LeastOccupied)
///     .build()
///     .expect("valid configuration");
/// let mut net = Network::build(&spec, RouteTable::new(2), cfg);
/// let outcome: RunOutcome = net.run_until(1_000);
/// assert!(outcome.deadlock.is_none());
///
/// // Every trunk direction exposes its lanes through the typed surface.
/// for link in net.links() {
///     for ch in link.lane_ids() {
///         let lane: &Lane = net.lane(ch);
///         assert_eq!(lane.stats().bytes_carried, 0);
///     }
/// }
///
/// // The parallel engine's partition plans are one import away.
/// let plan = ShardPlan::switch_hash(2, 2).expect("valid plan");
/// assert_eq!(plan.num_shards(), 2);
/// ```
pub mod prelude {
    pub use wormcast_sim::prelude::*;
    pub use wormcast_topo::{ShardPlan, TopoBuilder, Topology};
}

// Compile the README's example as a doctest so it can never drift from the
// real API.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;
