//! # wormcast
//!
//! A facade crate re-exporting the whole `wormcast` workspace: a
//! production-quality Rust reproduction of
//!
//! > Gerla, Palnati, Walton. *Multicasting Protocols for High-Speed,
//! > Wormhole-Routing Local Area Networks.* ACM SIGCOMM 1996.
//!
//! The workspace implements, from scratch:
//!
//! * a byte-level, deterministic discrete-event simulator of a
//!   Myrinet-class wormhole LAN ([`sim`]);
//! * the paper's topologies (8×8 torus, 24-node bidirectional shufflenet)
//!   and deadlock-free up/down routing ([`topo`]);
//! * the paper's contribution — deadlock-free, reliable, network-level
//!   multicast protocols: Hamiltonian-circuit and rooted-tree host-adapter
//!   multicast with two-buffer-class deadlock avoidance and implicit
//!   (ACK/NACK) buffer reservation, plus switch-level multicast with the
//!   Figure 2 tree route encoding ([`core`]);
//! * workload generation and statistics ([`traffic`], [`stats`]);
//! * a calibrated model of the paper's 8-host / 4-switch Myrinet prototype
//!   for the Section 8 measurements ([`myrinet`]).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results of every figure.

pub use wormcast_core as core;
pub use wormcast_myrinet as myrinet;
pub use wormcast_sim as sim;
pub use wormcast_stats as stats;
pub use wormcast_topo as topo;
pub use wormcast_traffic as traffic;

// Compile the README's example as a doctest so it can never drift from the
// real API.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;
