#!/bin/bash
# Wait for fig11 to finish (its stdout is flushed at completion).
until [ -s /root/repo/results/fig11.txt ]; do sleep 10; done
cd /root/repo
for b in fig12_prototype_throughput fig13_prototype_loss ablation_buffer_classes ablation_updown_restriction ablation_baselines ablation_tree_shapes ablation_switchcast ablation_buffer_contention; do
  cargo bench -p wormcast-bench --bench $b > results/${b#*_}.txt 2> results/${b#*_}.log
  # normalize names: keep full bench name
  mv results/${b#*_}.txt results/$b.txt 2>/dev/null
  mv results/${b#*_}.log results/$b.log 2>/dev/null
  echo "done $b"
done
echo ALL-BENCHES-DONE
