//! Deadlock, demonstrated and prevented.
//!
//! Part 1 — **fabric deadlock** (the risk behind the paper's Figure 3):
//! four long worms routed clockwise around a ring of switches block each
//! other in a circular wait. The simulator's wait-for-graph analyzer
//! reconstructs the cycle. The same traffic under up/down routing drains.
//!
//! Part 2 — **buffer deadlock** (Figures 6–7): opposing multicasts with
//! single-pool adapters thrash in NACK/retry storms; the two-buffer-class
//! rule lets the identical workload complete cleanly.
//!
//!     cargo run --release --example deadlock_demo

use std::sync::Arc;
use wormcast::core::buffers::PoolConfig;
use wormcast::core::reliable::{AckNackConfig, Reliability};
use wormcast::core::{HcConfig, HcProtocol, Membership};
use wormcast::sim::engine::HostId;
use wormcast::sim::network::RouteTable;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::{Network, NetworkConfig};
use wormcast::topo::{TopoBuilder, Topology, UpDown};
use wormcast::traffic::script::{install_one_shot, install_script};

fn ring(n: usize) -> Topology {
    let mut b = TopoBuilder::new(n);
    for s in 0..n {
        b.link(s, (s + 1) % n, 1);
    }
    for s in 0..n {
        b.host(s);
    }
    b.build()
}

fn install_hc(net: &mut Network, cfg: HcConfig, groups: &Arc<Membership>) {
    for h in 0..net.num_hosts() as u32 {
        net.set_protocol(
            HostId(h),
            Box::new(HcProtocol::new(HostId(h), cfg, Arc::clone(groups))),
        );
    }
}

fn part1_fabric_deadlock() {
    println!("== Part 1: fabric deadlock from cyclic routes ==\n");
    let topo = ring(4);
    // Deliberately illegal routes: two hops clockwise for everyone.
    let mut routes = RouteTable::new(4);
    let cw_port = [0u8, 1, 1, 1];
    for src in 0..4usize {
        routes.set(
            HostId(src as u32),
            HostId(((src + 2) % 4) as u32),
            vec![cw_port[src], cw_port[(src + 1) % 4], 2],
        );
    }
    let groups = Membership::from_groups([(0u8, vec![HostId(0)])]);
    let run = |label: &str, routes: RouteTable| {
        let mut net = Network::build(&topo.to_fabric_spec(), routes, NetworkConfig::builder().build().expect("valid config"));
        install_hc(&mut net, HcConfig::store_and_forward(), &groups);
        for src in 0..4u32 {
            install_one_shot(&mut net, HostId(src), 100, SourceMessage {
                dest: Destination::Unicast(HostId((src + 2) % 4)),
                payload_len: 2_000,
            });
        }
        let out = net.run_until(500_000);
        print!("{label}: delivered {}/4", net.msgs.deliveries.len());
        match out.deadlock {
            Some(report) => {
                println!(" -> DEADLOCK, {} worms stuck", report.stuck_worms);
                println!("   wait cycle: {:?}", report.cycle);
            }
            None => println!(" -> no deadlock (drained: {})", out.drained),
        }
    };
    run("clockwise routes  ", routes);
    let ud = UpDown::compute(&topo, 0);
    run("up/down routes    ", ud.route_table(&topo, false));
    println!();
}

fn part2_buffer_deadlock() {
    println!("== Part 2: adapter buffer deadlock (Figures 6-7) ==\n");
    let topo = ring(8);
    let ud = UpDown::compute(&topo, 0);
    let members: Vec<HostId> = (0..8).map(HostId).collect();
    let groups = Membership::from_groups([(0u8, members)]);
    for (label, single_class) in [("single pool      ", true), ("two buffer classes", false)] {
        let mut net = Network::build(
            &topo.to_fabric_spec(),
            ud.route_table(&topo, false),
            NetworkConfig::builder().build().expect("valid config"),
        );
        let cfg = HcConfig {
            reliability: Reliability::AckNack(AckNackConfig {
                pool: PoolConfig::tight(1_100),
                single_class,
                retry_timeout: 8_000,
                retry_jitter: 4_000,
                max_retries: 120,
            }),
            ..HcConfig::store_and_forward()
        };
        install_hc(&mut net, cfg, &groups);
        for h in 0..8u32 {
            let items = (0..6u64)
                .map(|i| {
                    (
                        100 + h as u64 + i * 2_500,
                        SourceMessage {
                            dest: Destination::Multicast(0),
                            payload_len: 1_000,
                        },
                    )
                })
                .collect();
            install_script(&mut net, HostId(h), items);
        }
        net.run_until(60_000_000);
        net.audit().expect("conservation");
        println!(
            "{label}: delivered {:>3}/336, worms injected {:>5} (retransmissions!), \
             NACK-drops {:>5}",
            net.msgs.deliveries.len(),
            net.stats.worms_injected,
            net.stats.worms_refused
        );
    }
    println!(
        "\nSame workload, same total buffer bytes: the class split keeps the\n\
         wrap-around (post-reversal) worms out of the pre-reversal pool, so\n\
         buffer waits cannot cycle (the paper's Figure 7 argument)."
    );
}

fn main() {
    part1_fabric_deadlock();
    part2_buffer_deadlock();
}
