//! MBone-style continuous media over the wormhole LAN.
//!
//! The paper lists the real-time MBone service among the multicast
//! applications that motivate network-level multicast. This example
//! streams periodic video frames from one source to a group and reports
//! latency, jitter, and delivery under fault injection — in the spirit of
//! smoltcp's `--corrupt-chance` example knobs:
//!
//!     cargo run --release --example video_mbone -- [corrupt_percent] [reliable]
//!
//! e.g. `cargo run --release --example video_mbone -- 10 reliable`
//! corrupts 10% of worms in transit and turns on the paper's ACK/NACK
//! implicit-reservation machinery, which recovers every frame at a jitter
//! cost; without `reliable`, corrupted frames are simply lost.

use std::sync::Arc;
use wormcast::core::buffers::PoolConfig;
use wormcast::core::reliable::{AckNackConfig, Reliability};
use wormcast::core::{HcConfig, HcProtocol, Membership};
use wormcast::sim::engine::HostId;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::{FaultConfig, Network, NetworkConfig};
use wormcast::stats::summary::percentile;
use wormcast::stats::LogHistogram;
use wormcast::topo::torus::torus;
use wormcast::topo::UpDown;
use wormcast::traffic::script::install_script;

const FRAME_BYTES: u32 = 5_000; // one compressed video frame (~5 KB)
const FRAME_PERIOD: u64 = 2_700_000; // 30 fps at 640 Mb/s byte-times
const FRAMES: u64 = 40;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let corrupt_percent: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let reliable = args.iter().any(|a| a == "reliable");

    let topo = torus(4, 1);
    let ud = UpDown::compute(&topo, 0);
    let routes = ud.route_table(&topo, false);
    let faults = FaultConfig::try_new(corrupt_percent / 100.0)
        .expect("corruption percentage must be 0-100");
    let cfg = NetworkConfig::builder()
        .faults(faults)
        .build()
        .expect("valid config");
    let mut net = Network::build(&topo.to_fabric_spec(), routes, cfg);

    let members: Vec<HostId> = vec![1, 3, 6, 9, 12, 14].into_iter().map(HostId).collect();
    let groups = Membership::from_groups([(0u8, members.clone())]);
    let reliability = if reliable {
        Reliability::AckNack(AckNackConfig {
            pool: PoolConfig::myrinet_default(),
            single_class: false,
            retry_timeout: 60_000,
            retry_jitter: 30_000,
            max_retries: 30,
        })
    } else {
        Reliability::None
    };
    let cfg = HcConfig {
        cut_through: true, // lowest latency at streaming loads
        reliability,
        ..HcConfig::store_and_forward()
    };
    for h in 0..16u32 {
        net.set_protocol(
            HostId(h),
            Box::new(HcProtocol::new(HostId(h), cfg, Arc::clone(&groups))),
        );
    }

    // Host 1 is the video source.
    let items = (0..FRAMES)
        .map(|k| {
            (
                1_000 + k * FRAME_PERIOD,
                SourceMessage {
                    dest: Destination::Multicast(0),
                    payload_len: FRAME_BYTES,
                },
            )
        })
        .collect();
    install_script(&mut net, HostId(1), items);

    let horizon = 1_000 + FRAMES * FRAME_PERIOD + 50_000_000;
    net.run_until(horizon);
    net.audit().expect("conservation invariant");

    let expected = FRAMES * (members.len() as u64 - 1);
    let latencies: Vec<f64> = net
        .msgs
        .deliveries
        .iter()
        .map(|d| {
            let created = net
                .msgs
                .created
                .iter()
                .find(|c| c.msg == d.msg)
                .expect("created record")
                .created;
            (d.at - created) as f64
        })
        .collect();
    let got = latencies.len() as u64;
    println!(
        "video multicast: {FRAMES} frames x {} receivers, {corrupt_percent}% corruption, \
         reliability {}",
        members.len() - 1,
        if reliable { "ON (ACK/NACK)" } else { "OFF" }
    );
    println!(
        "  frames delivered : {got}/{expected} ({:.1}% loss)",
        100.0 * (expected - got) as f64 / expected as f64
    );
    if !latencies.is_empty() {
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        let p50 = percentile(&latencies, 50.0);
        let p99 = percentile(&latencies, 99.0);
        println!("  latency mean     : {mean:>10.0} byte-times ({:.1} us)", mean * 0.0125);
        println!("  latency p50      : {p50:>10.0} byte-times");
        println!(
            "  latency p99      : {p99:>10.0} byte-times (jitter p99/p50 = {:.1}x)",
            p99 / p50.max(1.0)
        );
    }
    println!(
        "  corrupted worms  : {} (each recovered by retransmission: {})",
        net.stats.worms_corrupt,
        reliable && got == expected
    );
    if !latencies.is_empty() {
        let h: LogHistogram = latencies.iter().map(|&l| l as u64).collect();
        println!("\n  latency distribution (byte-times):");
        print!("{}", h.render());
    }
}
