//! Quickstart: build a small wormhole LAN, multicast one message on a
//! Hamiltonian circuit, and print the per-event timeline.
//!
//!     cargo run --example quickstart

use std::sync::Arc;
use wormcast::core::{HcConfig, HcProtocol, Membership};
use wormcast::sim::engine::HostId;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::trace::{TraceConfig, TraceEvent};
use wormcast::sim::{Network, NetworkConfig};
use wormcast::topo::{TopoBuilder, UpDown};
use wormcast::traffic::script::install_one_shot;

fn main() {
    // 1. Describe the fabric: four crossbar switches in a ring, one host
    //    on each (the builder allocates switch ports automatically).
    let mut b = TopoBuilder::new(4);
    b.link(0, 1, 1);
    b.link(1, 2, 1);
    b.link(2, 3, 1);
    b.link(3, 0, 1);
    for s in 0..4 {
        b.host(s);
    }
    let topo = b.build();

    // 2. Compute deadlock-free up/down routes (Autonet/Myrinet style) and
    //    build the byte-level simulator.
    let updown = UpDown::compute(&topo, 0);
    let routes = updown.route_table(&topo, false);
    let cfg = NetworkConfig::builder()
        .trace(TraceConfig::Memory)
        .build()
        .expect("valid config");
    let mut net = Network::build(&topo.to_fabric_spec(), routes, cfg);

    // 3. One multicast group of all four hosts; every host runs the
    //    Hamiltonian-circuit protocol (ascending IDs, store-and-forward).
    let members: Vec<HostId> = (0..4).map(HostId).collect();
    let groups = Membership::from_groups([(0u8, members)]);
    for h in 0..4u32 {
        let p = HcProtocol::new(HostId(h), HcConfig::store_and_forward(), Arc::clone(&groups));
        net.set_protocol(HostId(h), Box::new(p));
    }

    // 4. Host 2 multicasts 400 bytes at t = 100 byte-times.
    install_one_shot(&mut net, HostId(2), 100, SourceMessage {
        dest: Destination::Multicast(0),
        payload_len: 400,
    });

    // 5. Run and report.
    let outcome = net.run_until(100_000);
    println!("run ended at t={} (drained: {})", outcome.end_time, outcome.drained);
    println!("\nper-event timeline (byte-times):");
    for (t, ev) in net.trace.events() {
        match ev {
            TraceEvent::WormInjected { worm, host } => {
                let w = net.worm_by_name(*worm).expect("traced worm exists");
                println!(
                    "  t={t:>6}  host {} -> host {}: worm injected ({} bytes on the wire)",
                    host.0,
                    w.meta.dest.0,
                    w.wire_len()
                );
            }
            TraceEvent::WormReceived { worm, host } => {
                let w = net.worm_by_name(*worm).expect("traced worm exists");
                println!(
                    "  t={t:>6}  host {}: worm from host {} fully received",
                    host.0, w.meta.injector.0
                );
            }
            TraceEvent::Delivered { host, .. } => {
                println!("  t={t:>6}  host {}: message DELIVERED to the application", host.0);
            }
            other => println!("  t={t:>6}  {other:?}"),
        }
    }
    println!("\nmulticast latency per member (from t=100):");
    let mut ds = net.msgs.deliveries.clone();
    ds.sort_by_key(|d| d.at);
    for d in &ds {
        println!("  host {}: {} byte-times ({} ns on 640 Mb/s Myrinet)", d.host.0, d.at - 100, (d.at - 100) * 12);
    }
    net.audit().expect("conservation invariant");
}
