//! One traced low-load Figure 10 point, end to end — on the span fast
//! path: run the tree scheme on the 8×8 torus span-batched with the
//! in-memory trace sink, expand the span-level stream into the canonical
//! per-byte JSON Lines (DESIGN.md §3.2), validate it against the event
//! schema, diff it against a per-byte reference run, and print the
//! observability summary — blocked-time histograms by cause.
//!
//! CI runs this as a smoke job:
//!
//!     cargo run --release --example traced_fig10
//!
//! Exits non-zero if the run misbehaves, the JSONL fails validation, or
//! the expanded span trace is not byte-identical to the per-byte engine's.

use wormcast::sim::network::SimMode;
use wormcast::sim::trace::TraceConfig;
use wormcast::stats::blocked_times;
use wormcast_bench::fig10::{figure_tree_scheme, setup, Fig10Config};
use wormcast_bench::runner::{run_traced, SimSetup};
use wormcast_bench::trace_io::{expand_spans, validate_jsonl};

fn main() {
    let cfg = Fig10Config {
        loads: &[0.04],
        warmup: 10_000,
        measure: 60_000,
        drain: 40_000,
        seed: 0xF1610,
    };
    let mut point: SimSetup = setup(figure_tree_scheme(), 0.04, &cfg);
    point.trace = TraceConfig::Memory;
    point.mode = SimMode::SpanBatched;

    let (report, trace) = run_traced(&point);
    println!(
        "fig10 point: load 0.04, tree scheme, span-batched — {} multicast deliveries, \
         mean latency {:.0} byte-times, delivery ratio {:.3}",
        report.multicast.deliveries, report.multicast.per_delivery.mean, report.delivery_ratio
    );
    println!(
        "outcome: end t={} drained={} | {} trace events captured ({} dropped)",
        report.outcome.end_time,
        report.outcome.drained,
        trace.len(),
        report.trace_dropped
    );
    assert!(report.outcome.drained, "low-load point must drain");
    assert!(report.outcome.deadlock.is_none(), "must not deadlock");
    assert!(report.delivery_ratio > 0.95, "light load must deliver");
    assert!(!trace.is_empty(), "trace must capture the run");
    assert_eq!(report.trace_dropped, 0, "memory sink must not drop events");

    // Expand the span-level stream into the canonical per-byte JSONL and
    // pin it against a per-byte reference run of the same point.
    let span_jsonl = trace.to_jsonl();
    let expanded = expand_spans(&span_jsonl);
    let mut reference = point;
    reference.mode = SimMode::PerByte;
    let (_, ref_trace) = run_traced(&reference);
    assert!(
        expanded == ref_trace.to_jsonl(),
        "expanded span trace diverged from the per-byte reference"
    );
    println!(
        "span trace: {} lines expand to the per-byte reference byte-for-byte",
        span_jsonl.lines().count()
    );

    // Write and validate the canonical per-byte JSONL.
    let path = std::path::Path::new("results/traced_fig10.jsonl");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(path, &expanded).expect("write JSONL");
    let violations = validate_jsonl(&expanded);
    if !violations.is_empty() {
        for v in violations.iter().take(20) {
            eprintln!("schema violation: {v}");
        }
        panic!("{} schema violations in {}", violations.len(), path.display());
    }
    println!(
        "wrote {} ({} lines, schema-valid)",
        path.display(),
        expanded.lines().count()
    );

    // Blocked-time histograms by cause (span-* engine events are
    // transparent to the lifecycle consumers).
    let bt = blocked_times(&trace);
    println!("\nblocked intervals (byte-times):");
    println!(
        "  stop backpressure: {:>6} intervals, mean {:>7.1}, max {:>7}",
        bt.stop.count(),
        bt.stop.mean(),
        bt.stop.max()
    );
    println!(
        "  output busy:       {:>6} intervals, mean {:>7.1}, max {:>7}",
        bt.output_busy.count(),
        bt.output_busy.mean(),
        bt.output_busy.max()
    );
    println!(
        "  branch wait:       {:>6} intervals, mean {:>7.1}, max {:>7}",
        bt.branch_wait.count(),
        bt.branch_wait.mean(),
        bt.branch_wait.max()
    );
    println!("  unresolved:        {:>6}", bt.unresolved);
    println!("\ntraced fig10 smoke: OK");
}
