//! One traced low-load Figure 10 point, end to end: run the tree scheme on
//! the 8×8 torus with the in-memory trace sink, write the worm-lifecycle
//! trace as JSON Lines, validate it against the event schema (DESIGN.md
//! §3.2), and print the observability summary — blocked-time histograms
//! by cause.
//!
//! CI runs this as a smoke job:
//!
//!     cargo run --release --example traced_fig10
//!
//! Exits non-zero if the run misbehaves or the JSONL fails validation.

use wormcast::sim::trace::TraceConfig;
use wormcast::stats::blocked_times;
use wormcast_bench::fig10::{figure_tree_scheme, setup, Fig10Config};
use wormcast_bench::runner::{run_traced, SimSetup};
use wormcast_bench::trace_io::{validate_jsonl, write_jsonl};

fn main() {
    let cfg = Fig10Config {
        loads: &[0.04],
        warmup: 10_000,
        measure: 60_000,
        drain: 40_000,
        seed: 0xF1610,
    };
    let mut point: SimSetup = setup(figure_tree_scheme(), 0.04, &cfg);
    point.trace = TraceConfig::Memory;

    let (report, trace) = run_traced(&point);
    println!(
        "fig10 point: load 0.04, tree scheme — {} multicast deliveries, \
         mean latency {:.0} byte-times, delivery ratio {:.3}",
        report.multicast.deliveries, report.multicast.per_delivery.mean, report.delivery_ratio
    );
    println!(
        "outcome: end t={} drained={} | {} trace events captured",
        report.outcome.end_time,
        report.outcome.drained,
        trace.len()
    );
    assert!(report.outcome.drained, "low-load point must drain");
    assert!(report.outcome.deadlock.is_none(), "must not deadlock");
    assert!(report.delivery_ratio > 0.95, "light load must deliver");
    assert!(!trace.is_empty(), "trace must capture the run");

    // Write and validate the JSONL.
    let path = std::path::Path::new("results/traced_fig10.jsonl");
    std::fs::create_dir_all("results").expect("create results dir");
    write_jsonl(&trace, path).expect("write JSONL");
    let jsonl = std::fs::read_to_string(path).expect("read back JSONL");
    let violations = validate_jsonl(&jsonl);
    if !violations.is_empty() {
        for v in violations.iter().take(20) {
            eprintln!("schema violation: {v}");
        }
        panic!("{} schema violations in {}", violations.len(), path.display());
    }
    println!(
        "wrote {} ({} lines, schema-valid)",
        path.display(),
        jsonl.lines().count()
    );

    // Blocked-time histograms by cause.
    let bt = blocked_times(&trace);
    println!("\nblocked intervals (byte-times):");
    println!(
        "  stop backpressure: {:>6} intervals, mean {:>7.1}, max {:>7}",
        bt.stop.count(),
        bt.stop.mean(),
        bt.stop.max()
    );
    println!(
        "  output busy:       {:>6} intervals, mean {:>7.1}, max {:>7}",
        bt.output_busy.count(),
        bt.output_busy.mean(),
        bt.output_busy.max()
    );
    println!(
        "  branch wait:       {:>6} intervals, mean {:>7.1}, max {:>7}",
        bt.branch_wait.count(),
        bt.branch_wait.mean(),
        bt.branch_wait.max()
    );
    println!("  unresolved:        {:>6}", bt.unresolved);
    println!("\ntraced fig10 smoke: OK");
}
