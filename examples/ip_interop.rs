//! Interoperation with multicast IP (Section 8.1).
//!
//! The paper's driver maps class D IP multicast addresses onto the 8-bit
//! Myrinet group space by taking the low eight bits; colliding IP groups
//! share a Myrinet group that carries the **union** of their members, and
//! the receiving IP layer filters. This example builds that mapping for a
//! `wb`-style whiteboard session and an `nv`-style video session whose
//! addresses collide in the low byte, runs real traffic over the fabric,
//! and shows the filtering at work.
//!
//!     cargo run --release --example ip_interop

use std::sync::Arc;
use wormcast::core::ipmap::{ClassD, IpMulticastMap};
use wormcast::core::{Membership, UnicastRepeatConfig, UnicastRepeatProtocol};
use wormcast::sim::engine::HostId;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::{Network, NetworkConfig};
use wormcast::topo::torus::torus;
use wormcast::topo::UpDown;
use wormcast::traffic::script::install_script;

fn main() {
    // Two IP sessions whose class D addresses collide in the low byte:
    let wb = ClassD::new(224, 2, 127, 7); // whiteboard
    let nv = ClassD::new(224, 2, 200, 7); // video conference
    println!(
        "IP groups: wb={} nv={} -> both map to Myrinet group {}",
        wb,
        nv,
        wb.myrinet_group()
    );

    let mut map = IpMulticastMap::new();
    for h in [0u32, 2, 4] {
        map.join(wb, HostId(h)); // whiteboard members
    }
    for h in [4u32, 6, 8] {
        map.join(nv, HostId(h)); // video members (host 4 is in both)
    }
    let union = map.myrinet_members(wb.myrinet_group());
    println!("Myrinet group {} union membership: {union:?}", wb.myrinet_group());

    // Drive the fabric with the union group; receivers apply the IP filter.
    let topo = torus(3, 1);
    let ud = UpDown::compute(&topo, 0);
    let mut net = Network::build(
        &topo.to_fabric_spec(),
        ud.route_table(&topo, false),
        NetworkConfig::builder().build().expect("valid config"),
    );
    let groups = Membership::from_groups(map.required_myrinet_groups());
    for h in 0..9u32 {
        net.set_protocol(
            HostId(h),
            Box::new(UnicastRepeatProtocol::new(
                HostId(h),
                UnicastRepeatConfig::default(),
                Arc::clone(&groups),
            )),
        );
    }
    // Host 0 sends 3 whiteboard strokes; host 6 sends 3 video frames.
    // On the wire both are Myrinet group 7 — the union group.
    let g = wb.myrinet_group();
    install_script(
        &mut net,
        HostId(0),
        (0..3u64)
            .map(|i| {
                (
                    100 + i * 5_000,
                    SourceMessage {
                        dest: Destination::Multicast(g),
                        payload_len: 200,
                    },
                )
            })
            .collect(),
    );
    install_script(
        &mut net,
        HostId(6),
        (0..3u64)
            .map(|i| {
                (
                    2_100 + i * 5_000,
                    SourceMessage {
                        dest: Destination::Multicast(g),
                        payload_len: 1_400,
                    },
                )
            })
            .collect(),
    );
    net.run_until(500_000);
    net.audit().expect("conservation");

    // The IP layer filters by the full class D address.
    println!("\nper-host reception (Myrinet delivered -> IP keeps):");
    for h in union {
        let myrinet_got = net
            .msgs
            .deliveries
            .iter()
            .filter(|d| d.host == h)
            .count();
        // Which session does each delivery belong to? Payload size tells
        // us here; the real driver reads the IP header.
        let keeps_wb = map.host_accepts(wb, h);
        let keeps_nv = map.host_accepts(nv, h);
        let kept = net
            .msgs
            .deliveries
            .iter()
            .filter(|d| d.host == h)
            .filter(|d| {
                let rec = net.msgs.created.iter().find(|c| c.msg == d.msg).unwrap();
                (rec.payload_len == 200 && keeps_wb) || (rec.payload_len == 1400 && keeps_nv)
            })
            .count();
        println!(
            "  host {}: {} worms from the union group -> IP layer keeps {} \
             (wb: {}, nv: {})",
            h.0,
            myrinet_got,
            kept,
            if keeps_wb { "yes" } else { "filtered" },
            if keeps_nv { "yes" } else { "filtered" },
        );
    }
    println!(
        "\nColliding low bytes are safe — the union group over-delivers and\n\
         the IP layer drops the excess, exactly as the paper's driver did\n\
         when it demonstrated wb and nv over Myrinet multicast."
    );
}
