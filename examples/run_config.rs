//! Config-driven experiment runner: describe a simulation in JSON, get
//! JSON results back — the shape a downstream user scripts parameter
//! studies with.
//!
//!     cargo run --release --example run_config            # built-in demo config
//!     cargo run --release --example run_config -- my.json # your own
//!
//! The config selects a topology (torus / shufflenet), a scheme, the
//! Section 7 workload, and the measurement windows; the output carries the
//! latency/throughput summaries plus the hottest links.

use serde::{Deserialize, Serialize};
use wormcast::sim::time::SimTime;
use wormcast::stats::links::{hotspot_factor, link_loads};
use wormcast::stats::latency::{latencies, Kind};
use wormcast::topo::{shufflenet::shufflenet24, torus::torus, Topology};
use wormcast::traffic::rng::host_stream;
use wormcast::traffic::workload::PaperWorkload;
use wormcast::traffic::{GroupSet, LengthDist};
use wormcast_bench::runner::{build_network, SimSetup};
use wormcast_bench::Scheme;

#[derive(Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
enum TopologyConfig {
    Torus { k: usize, link_delay: SimTime },
    Shufflenet24 { link_delay: SimTime },
}

#[derive(Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
enum SchemeConfig {
    HcStoreForward,
    HcCutThrough,
    TreeBroadcastGreedy,
    RepeatUnicast,
}

#[derive(Serialize, Deserialize)]
struct Config {
    topology: TopologyConfig,
    scheme: SchemeConfig,
    groups: usize,
    group_size: usize,
    offered_load: f64,
    multicast_prob: f64,
    mean_worm_bytes: u32,
    warmup: SimTime,
    measure: SimTime,
    drain: SimTime,
    seed: u64,
}

#[derive(Serialize)]
struct Output {
    multicast_latency_mean: f64,
    multicast_latency_ci95: f64,
    multicast_deliveries: usize,
    unicast_latency_mean: f64,
    host_tx_utilization: f64,
    hotspot_factor: f64,
    hottest_links: Vec<(String, f64)>,
}

fn demo_config() -> Config {
    Config {
        topology: TopologyConfig::Torus { k: 6, link_delay: 1 },
        scheme: SchemeConfig::TreeBroadcastGreedy,
        groups: 6,
        group_size: 8,
        offered_load: 0.04,
        multicast_prob: 0.10,
        mean_worm_bytes: 400,
        warmup: 40_000,
        measure: 200_000,
        drain: 100_000,
        seed: 42,
    }
}

fn main() {
    let cfg: Config = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            serde_json::from_str(&text).expect("invalid config JSON")
        }
        None => {
            eprintln!("(no config given; running the built-in demo — pass a JSON path to customise)");
            eprintln!(
                "demo config:\n{}\n",
                serde_json::to_string_pretty(&demo_config()).unwrap()
            );
            demo_config()
        }
    };
    let topo: Topology = match cfg.topology {
        TopologyConfig::Torus { k, link_delay } => torus(k, link_delay),
        TopologyConfig::Shufflenet24 { link_delay } => shufflenet24(link_delay),
    };
    let scheme = match cfg.scheme {
        SchemeConfig::HcStoreForward => Scheme::Hc(wormcast::core::HcConfig::store_and_forward()),
        SchemeConfig::HcCutThrough => Scheme::Hc(wormcast::core::HcConfig::cut_through()),
        SchemeConfig::TreeBroadcastGreedy => wormcast_bench::fig10::figure_tree_scheme(),
        SchemeConfig::RepeatUnicast => {
            Scheme::Repeat(wormcast::core::UnicastRepeatConfig::default())
        }
    };
    let mut grng = host_stream(cfg.seed, 0xC0F1);
    let groups = GroupSet::random(topo.num_hosts(), cfg.groups, cfg.group_size, &mut grng);
    let workload = PaperWorkload {
        offered_load: cfg.offered_load,
        multicast_prob: cfg.multicast_prob,
        lengths: LengthDist::Geometric {
            mean: cfg.mean_worm_bytes,
        },
        stop_at: None,
    };
    let setup = SimSetup::builder(topo, groups, scheme, workload)
        .seed(cfg.seed)
        .windows(cfg.warmup, cfg.measure, cfg.drain)
        .build()
        .expect("config file passed validation");
    let mut net = build_network(&setup);
    let out = net.run_until(setup.drain_until);
    assert!(out.deadlock.is_none(), "deadlock: {:?}", out.deadlock);
    net.audit().expect("conservation");
    let mc = latencies(&net.msgs, Kind::Multicast, setup.warmup, setup.generate_until, None);
    let uc = latencies(&net.msgs, Kind::Unicast, setup.warmup, setup.generate_until, None);
    let loads = link_loads(&net, setup.drain_until);
    let output = Output {
        multicast_latency_mean: mc.per_delivery.mean,
        multicast_latency_ci95: mc.per_delivery.ci95(),
        multicast_deliveries: mc.deliveries,
        unicast_latency_mean: uc.per_delivery.mean,
        host_tx_utilization: net.mean_host_tx_utilization(setup.drain_until),
        hotspot_factor: hotspot_factor(&net, setup.drain_until),
        hottest_links: loads
            .iter()
            .take(5)
            .map(|l| (format!("{:?}:{} -> {:?}:{}", l.from.0, l.from.1, l.to.0, l.to.1), l.utilization))
            .collect(),
    };
    println!("{}", serde_json::to_string_pretty(&output).unwrap());
}
