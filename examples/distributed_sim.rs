//! Distributed Interactive Simulation over the wormhole LAN.
//!
//! The paper's introduction motivates network-level multicast with
//! distributed simulation (DIS): every federate broadcasts state updates
//! to the group, and the algorithms require **reliable, totally ordered**
//! delivery. This example runs a DIS-style workload — every member
//! periodically multicasts an entity-state update — under the two
//! totally-ordered schemes (serialized Hamiltonian circuit, root-serialized
//! tree) and the repeated-unicast baseline, then verifies the ordering
//! guarantee and compares latency.
//!
//!     cargo run --release --example distributed_sim

use std::collections::HashMap;
use std::sync::Arc;
use wormcast::core::ordering::check_total_order;
use wormcast::core::{
    HcConfig, HcProtocol, Membership, TreeConfig, TreeProtocol, UnicastRepeatConfig,
    UnicastRepeatProtocol,
};
use wormcast::sim::engine::HostId;
use wormcast::sim::protocol::{Destination, SourceMessage};
use wormcast::sim::{Network, NetworkConfig};
use wormcast::stats::latency::{latencies, Kind};
use wormcast::topo::torus::torus;
use wormcast::topo::tree::{MulticastTree, TreeShape};
use wormcast::topo::UpDown;
use wormcast::traffic::script::install_script;

const UPDATE_BYTES: u32 = 144; // a DIS entity-state PDU
const UPDATE_PERIOD: u64 = 40_000; // 0.5 ms at 640 Mb/s

fn run(scheme: &str) -> (f64, f64, bool) {
    let topo = torus(4, 1);
    let ud = UpDown::compute(&topo, 0);
    let routes = ud.route_table(&topo, false);
    let mut net = Network::build(&topo.to_fabric_spec(), routes, NetworkConfig::builder().build().expect("valid config"));
    // One federation of 9 simulators spread over the 16 hosts.
    let members: Vec<HostId> = (0..16).step_by(2).take(9).map(HostId).collect();
    let groups = Membership::from_groups([(0u8, members.clone())]);
    match scheme {
        "hc-serialized" => {
            let cfg = HcConfig {
                serialize: true,
                ..HcConfig::store_and_forward()
            };
            for h in 0..16u32 {
                net.set_protocol(
                    HostId(h),
                    Box::new(HcProtocol::new(HostId(h), cfg, Arc::clone(&groups))),
                );
            }
        }
        "tree-root-serialized" => {
            let tree = MulticastTree::build(&members, TreeShape::BinaryHeap, None);
            let mut trees = HashMap::new();
            trees.insert(0u8, tree);
            let trees = Arc::new(trees);
            for h in 0..16u32 {
                net.set_protocol(
                    HostId(h),
                    Box::new(TreeProtocol::new(
                        HostId(h),
                        TreeConfig::store_and_forward(),
                        Arc::clone(&trees),
                    )),
                );
            }
        }
        "repeated-unicast" => {
            for h in 0..16u32 {
                net.set_protocol(
                    HostId(h),
                    Box::new(UnicastRepeatProtocol::new(
                        HostId(h),
                        UnicastRepeatConfig::default(),
                        Arc::clone(&groups),
                    )),
                );
            }
        }
        other => panic!("unknown scheme {other}"),
    }
    // Every federate publishes a state update each period (staggered).
    for (i, &m) in members.iter().enumerate() {
        let items = (0..25u64)
            .map(|k| {
                (
                    1_000 + i as u64 * 1_700 + k * UPDATE_PERIOD,
                    SourceMessage {
                        dest: Destination::Multicast(0),
                        payload_len: UPDATE_BYTES,
                    },
                )
            })
            .collect();
        install_script(&mut net, m, items);
    }
    let out = net.run_until(3_000_000);
    assert!(out.drained, "{scheme}: run must drain");
    net.audit().expect("conservation");
    let lat = latencies(&net.msgs, Kind::Multicast, 0, 3_000_000, None);
    let ordered = check_total_order(&net.msgs, 0, &members).is_none();
    (lat.per_delivery.mean, lat.per_delivery.max, ordered)
}

fn main() {
    println!("DIS federation: 9 members on a 4x4 torus, 144-byte state updates\n");
    println!(
        "{:<22} {:>14} {:>14} {:>16}",
        "scheme", "mean latency", "worst latency", "totally ordered?"
    );
    for scheme in ["hc-serialized", "tree-root-serialized", "repeated-unicast"] {
        let (mean, max, ordered) = run(scheme);
        println!(
            "{scheme:<22} {mean:>14.0} {max:>14.0} {:>16}",
            if ordered { "yes" } else { "NO" }
        );
    }
    println!(
        "\n(latencies in byte-times; 1 byte-time = 12.5 ns at 640 Mb/s)\n\
         Repeated unicast offers no ordering guarantee across members and\n\
         occupies the source for the whole fan-out; the serialized schemes\n\
         pay one relay hop for a total order — the paper's trade-off."
    );
}
